// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - R = P partitions (the paper's choice) versus more, finer partitions
//     (RFactor): finer partitions balance better statically but cost more
//     claims and break affinity runs.
//   - Steal-half (the cilk_for divide-and-conquer behaviour the hybrid
//     scheme inherits) versus steal-one-chunk.
//   - The chunk-size rule min(2048, N/(8P)) versus fixed chunk sizes.
//   - Sensitivity of the hybrid scheme to the claim cost.
//   - Sensitivity of the affinity results to barrier-release jitter.
//
// Run with: go test -bench=Ablation -benchtime=1x
package hybridloop_test

import (
	"fmt"
	"testing"

	"hybridloop/internal/loop"
	"hybridloop/internal/sim"
	"hybridloop/internal/topology"
)

// BenchmarkAblation_RFactor varies the hybrid partition count R on the
// unbalanced microbenchmark: T32 and affinity per R multiplier.
func BenchmarkAblation_RFactor(b *testing.B) {
	m := topology.Paper()
	w := microBench(false, 48)
	for _, rf := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("RFactor%d", rf), func(b *testing.B) {
			var r sim.Result
			for i := 0; i < b.N; i++ {
				r = sim.Run(sim.Config{
					Machine: m, P: 32, Strategy: loop.Hybrid,
					Seed: uint64(i + 1), RFactor: rf,
				}, w)
			}
			b.ReportMetric(r.Cycles, "T32-cycles")
			b.ReportMetric(100*r.Affinity, "same-core-%")
			b.ReportMetric(float64(r.Claims), "claims")
		})
	}
}

// BenchmarkAblation_StealGranularity compares steal-half against
// steal-one-chunk for the stealing strategies on the unbalanced workload.
func BenchmarkAblation_StealGranularity(b *testing.B) {
	m := topology.Paper()
	w := microBench(false, 48)
	for _, s := range []loop.Strategy{loop.Hybrid, loop.DynamicStealing} {
		for gName, g := range map[string]sim.StealGranularity{
			"half": sim.StealHalf, "chunk": sim.StealChunk,
		} {
			b.Run(fmt.Sprintf("%v/%s", s, gName), func(b *testing.B) {
				var r sim.Result
				for i := 0; i < b.N; i++ {
					r = sim.Run(sim.Config{
						Machine: m, P: 32, Strategy: s,
						Seed: uint64(i + 1), Steal: g,
					}, w)
				}
				b.ReportMetric(r.Cycles, "T32-cycles")
				b.ReportMetric(float64(r.Steals), "steals")
			})
		}
	}
}

// BenchmarkAblation_ChunkSize sweeps fixed chunk sizes against the
// paper's rule (chunk 0) for the dynamic strategies, on a *fine-grained*
// loop (64k tiny iterations): chunk 1 exposes the per-chunk overhead that
// made the paper tune every platform to min(2048, N/(8P)), and huge
// chunks starve the machine of parallelism.
func BenchmarkAblation_ChunkSize(b *testing.B) {
	m := topology.Paper()
	w := sim.Workload{
		Name:    "fine",
		Regions: []int64{64 << 20},
		Loops: []sim.Loop{{
			N: 1 << 16,
			Cost: func(i int) sim.IterCost {
				lo := int64(i) * 1024
				return sim.IterCost{
					Compute: 100,
					Touches: []sim.Touch{{Region: 0, Lo: lo, Hi: lo + 1024}},
				}
			},
		}},
	}
	for _, s := range []loop.Strategy{loop.Hybrid, loop.DynamicStealing, loop.DynamicSharing} {
		for _, chunk := range []int{0, 1, 4, 16, 64} {
			name := fmt.Sprintf("%v/chunk%d", s, chunk)
			if chunk == 0 {
				name = fmt.Sprintf("%v/paper-rule", s)
			}
			b.Run(name, func(b *testing.B) {
				var r sim.Result
				for i := 0; i < b.N; i++ {
					r = sim.Run(sim.Config{
						Machine: m, P: 32, Strategy: s,
						Chunk: chunk, Seed: uint64(i + 1),
					}, w)
				}
				b.ReportMetric(r.Cycles, "T32-cycles")
				b.ReportMetric(float64(r.Chunks), "chunks")
			})
		}
	}
}

// BenchmarkAblation_ClaimCost scales the hybrid claim cost to show the
// scheme's insensitivity to it (Theorem 5's O(R lg R) term is tiny).
func BenchmarkAblation_ClaimCost(b *testing.B) {
	w := microBench(true, 48)
	for _, factor := range []float64{1, 10, 100} {
		m := topology.Paper()
		m.Cost.Claim *= factor
		b.Run(fmt.Sprintf("claim-x%g", factor), func(b *testing.B) {
			var r sim.Result
			for i := 0; i < b.N; i++ {
				r = sim.Run(sim.Config{
					Machine: m, P: 32, Strategy: loop.Hybrid, Seed: uint64(i + 1),
				}, w)
			}
			b.ReportMetric(r.Cycles, "T32-cycles")
		})
	}
}

// BenchmarkAblation_BarrierJitter varies the barrier-release skew: with
// zero jitter central-queue schedulers drain in a fixed core order and
// show inflated affinity; realistic skew collapses it.
func BenchmarkAblation_BarrierJitter(b *testing.B) {
	w := microBench(true, 48)
	for _, jitter := range []float64{0, 50, 150, 500} {
		m := topology.Paper()
		m.Cost.BarrierJitter = jitter
		for _, s := range []loop.Strategy{loop.Hybrid, loop.Guided} {
			b.Run(fmt.Sprintf("jitter%g/%v", jitter, s), func(b *testing.B) {
				var r sim.Result
				for i := 0; i < b.N; i++ {
					r = sim.Run(sim.Config{
						Machine: m, P: 32, Strategy: s, Seed: uint64(i + 1),
					}, w)
				}
				b.ReportMetric(100*r.Affinity, "same-core-%")
			})
		}
	}
}

// BenchmarkAblation_RemotePenalty scales the remote-access time cost to
// show where the hybrid scheme's advantage comes from: with no NUMA
// penalty (remote == local) the gap to vanilla closes.
func BenchmarkAblation_RemotePenalty(b *testing.B) {
	w := microBench(true, 48)
	for _, penalty := range []float64{1.0, 1.6, 3.0} {
		m := topology.Paper()
		m.TimeLat[topology.RemoteL3] = m.TimeLat[topology.LocalL3] * penalty
		m.TimeLat[topology.RemoteDRAM] = m.TimeLat[topology.LocalDRAM] * penalty
		for _, s := range []loop.Strategy{loop.Hybrid, loop.DynamicStealing} {
			b.Run(fmt.Sprintf("remote-x%g/%v", penalty, s), func(b *testing.B) {
				var r sim.Result
				for i := 0; i < b.N; i++ {
					r = sim.Run(sim.Config{
						Machine: m, P: 32, Strategy: s, Seed: uint64(i + 1),
					}, w)
				}
				b.ReportMetric(r.Cycles, "T32-cycles")
			})
		}
	}
}

// TestAblationKnobsWork sanity-checks the ablation plumbing outside of
// benchmark mode.
func TestAblationKnobsWork(t *testing.T) {
	m := topology.Paper()
	w := microBench(false, 16)
	base := sim.Run(sim.Config{Machine: m, P: 8, Strategy: loop.Hybrid, Seed: 1}, w)
	finer := sim.Run(sim.Config{Machine: m, P: 8, Strategy: loop.Hybrid, Seed: 1, RFactor: 4}, w)
	if finer.Claims <= base.Claims {
		t.Errorf("RFactor=4 did not increase claims: %d vs %d", finer.Claims, base.Claims)
	}
	chunky := sim.Run(sim.Config{Machine: m, P: 8, Strategy: loop.DynamicStealing, Seed: 1, Steal: sim.StealChunk}, w)
	halfy := sim.Run(sim.Config{Machine: m, P: 8, Strategy: loop.DynamicStealing, Seed: 1, Steal: sim.StealHalf}, w)
	if chunky.Steals <= halfy.Steals {
		t.Errorf("StealChunk did not increase steal count: %d vs %d", chunky.Steals, halfy.Steals)
	}
}

// BenchmarkAblation_Stragglers delays some cores' arrival at every loop
// (other parallel regions / OS noise — the paper's second motivation for
// dynamic load balancing): static partitioning stalls on the late cores'
// partitions, while hybrid redistributes them through the claim sequence
// and work stealing.
func BenchmarkAblation_Stragglers(b *testing.B) {
	m := topology.Paper()
	w := microBench(true, 48)
	for _, lag := range []float64{0, 50e3, 200e3} {
		for _, s := range []loop.Strategy{loop.Hybrid, loop.Static, loop.DynamicStealing} {
			b.Run(fmt.Sprintf("lag%.0fk/%v", lag/1000, s), func(b *testing.B) {
				var r sim.Result
				for i := 0; i < b.N; i++ {
					r = sim.Run(sim.Config{
						Machine: m, P: 32, Strategy: s, Seed: uint64(i + 1),
						Stragglers: 8, StraggleDelay: lag,
					}, w)
				}
				b.ReportMetric(r.Cycles, "T32-cycles")
				b.ReportMetric(100*r.Affinity, "same-core-%")
			})
		}
	}
}

// BenchmarkAblation_ClaimMode compares the paper's work-first claim
// discipline (claim one partition, execute it, claim the next) against a
// help-first variant that walks the whole claim sequence eagerly: with
// simultaneous arrival both behave alike, but once some cores arrive late
// (stragglers), eager claimers hoard the late cores' designated
// partitions and affinity collapses — the scheme depends on Algorithm 3's
// spawn being scheduled work-first.
func BenchmarkAblation_ClaimMode(b *testing.B) {
	m := topology.Paper()
	w := microBench(true, 48)
	for _, lag := range []float64{0, 100e3} {
		for modeName, mode := range map[string]sim.ClaimMode{
			"work-first": sim.ClaimExecute, "help-first": sim.ClaimEager,
		} {
			b.Run(fmt.Sprintf("lag%.0fk/%s", lag/1000, modeName), func(b *testing.B) {
				var r sim.Result
				for i := 0; i < b.N; i++ {
					r = sim.Run(sim.Config{
						Machine: m, P: 32, Strategy: loop.Hybrid, Seed: uint64(i + 1),
						Claim: mode, Stragglers: 8, StraggleDelay: lag,
					}, w)
				}
				b.ReportMetric(r.Cycles, "T32-cycles")
				b.ReportMetric(100*r.Affinity, "same-core-%")
			})
		}
	}
}
